package faults

import (
	"fmt"

	"otisnet/internal/digraph"
	"otisnet/internal/sim"
)

// FaultedTopology wraps any sim.Topology and replays a fault Plan into it.
// Failed elements are masked out of OutCouplers/Heads, distances are
// recomputed on the surviving structure, and the precomputed route table is
// repaired row by row: a fault/repair event rebuilds only the rows whose
// routing inputs actually changed (RowsRebuilt counts them), and between
// events NextCoupler remains an O(1) lookup, preserving the engine's
// allocation-free steady-state Step.
//
// The table is kept as one flat []sim.RouteEntry (with the packed
// delivers-here bit) and lent to the engine through RouteTable, with the
// distance rows lent through DistanceRows: the compiled engine reads the
// same memory this type repairs, so a fault event invalidates exactly the
// compiled rows it rebuilds, with no copying or notification beyond the
// sim.TopologyChange the engine already consumes.
//
// FaultedTopology is stateful and single-engine: concurrent scenarios (e.g.
// sweep workers) must each wrap their own instance around the shared
// read-only base. With an empty plan it reproduces the base topology's
// routing decisions exactly, so fault-free runs are bit-for-bit identical
// to runs on the unwrapped topology.
type FaultedTopology struct {
	base sim.Topology
	plan Plan
	next int // next unapplied plan event
	// pristine is true while no event has fired since the last full Reset:
	// masks clear, live structure and tables identical to the base. It
	// lets the back-to-back Resets of engine reuse (SetPlan followed by
	// Engine.Run) skip the O(n²) table restore all but once.
	pristine bool

	n, m int

	// Immutable caches of the base structure.
	baseOut   [][]int // node -> couplers it transmits on
	baseHeads [][]int // coupler -> listening nodes
	tails     [][]int // coupler -> transmitting nodes
	headOf    [][]int // node -> couplers it listens on

	// Fault masks. txDown[u] is parallel to baseOut[u].
	nodeDown    []bool
	couplerDown []bool
	txDown      [][]bool

	// Live (masked) structure and routing state. route views routeFlat,
	// the array lent to the engine via RouteTable.
	liveOut   [][]int
	liveHeads [][]int
	dist      [][]int
	route     [][]sim.RouteEntry
	routeFlat []sim.RouteEntry

	// Event-time scratch.
	prevDist     []int  // previous dist row during recompute
	distChanged  []bool // node -> dist row changed this event
	dirty        []bool // node -> route row must be rebuilt this event
	entryChanged []bool // n*n bitmap of changed route entries
	changedRows  []int  // rows marked in entryChanged (cleared next event)
	failedNodes  []int  // nodes that went down this event
	bfsQueue     []int

	rowsRebuilt int
}

// Wrap prepares a faulted view of base driven by plan. Event element ids
// are validated against the base topology.
//
// A wrapper is private mutable state: it may be shared between a solo
// engine run and a later one (SetPlan re-arms it), but never between two
// concurrently live replicas. Batched execution (sim.ReplicaSet) therefore
// holds one wrapper per replica slot; each replica polls its own event
// stream and the per-entry invalidation bitmap behind TopologyChange.
// EntryChanged only ever marks rows of that replica's compiled view, so a
// fault firing mid-batch cannot leak into siblings sharing the base
// snapshot or an injection stream.
func Wrap(base sim.Topology, plan Plan) *FaultedTopology {
	n, m := base.Nodes(), base.Couplers()
	ft := &FaultedTopology{
		base: base, plan: plan, n: n, m: m,
		baseOut:      make([][]int, n),
		baseHeads:    make([][]int, m),
		tails:        make([][]int, m),
		headOf:       make([][]int, n),
		nodeDown:     make([]bool, n),
		couplerDown:  make([]bool, m),
		txDown:       make([][]bool, n),
		liveOut:      make([][]int, n),
		liveHeads:    make([][]int, m),
		dist:         make([][]int, n),
		route:        make([][]sim.RouteEntry, n),
		prevDist:     make([]int, n),
		distChanged:  make([]bool, n),
		dirty:        make([]bool, n),
		entryChanged: make([]bool, n*n),
	}
	for u := 0; u < n; u++ {
		ft.baseOut[u] = append([]int(nil), base.OutCouplers(u)...)
		ft.txDown[u] = make([]bool, len(ft.baseOut[u]))
		ft.liveOut[u] = make([]int, 0, len(ft.baseOut[u]))
		for _, c := range ft.baseOut[u] {
			ft.tails[c] = append(ft.tails[c], u)
		}
	}
	for c := 0; c < m; c++ {
		ft.baseHeads[c] = append([]int(nil), base.Heads(c)...)
		ft.liveHeads[c] = make([]int, 0, len(ft.baseHeads[c]))
		for _, h := range ft.baseHeads[c] {
			ft.headOf[h] = append(ft.headOf[h], c)
		}
	}
	distFlat := make([]int, n*n)
	ft.routeFlat = make([]sim.RouteEntry, n*n)
	for u := 0; u < n; u++ {
		ft.dist[u] = distFlat[u*n : (u+1)*n : (u+1)*n]
		ft.route[u] = ft.routeFlat[u*n : (u+1)*n : (u+1)*n]
	}
	for _, ev := range plan.Events {
		ft.validate(ev.Elem)
	}
	ft.Reset()
	return ft
}

func (ft *FaultedTopology) validate(el Element) {
	switch el.Kind {
	case KindNode:
		if el.Node < 0 || el.Node >= ft.n {
			panic(fmt.Sprintf("faults: node %d out of range [0,%d)", el.Node, ft.n))
		}
	case KindCoupler:
		if el.Coupler < 0 || el.Coupler >= ft.m {
			panic(fmt.Sprintf("faults: coupler %d out of range [0,%d)", el.Coupler, ft.m))
		}
	case KindTransmitter:
		if el.Node < 0 || el.Node >= ft.n || ft.txIndex(el.Node, el.Coupler) < 0 {
			panic(fmt.Sprintf("faults: no transmitter %v on this topology", el))
		}
	default:
		panic(fmt.Sprintf("faults: unknown element kind %d", int(el.Kind)))
	}
}

// txIndex locates coupler c in baseOut[u], or -1.
func (ft *FaultedTopology) txIndex(u, c int) int {
	for i, oc := range ft.baseOut[u] {
		if oc == c {
			return i
		}
	}
	return -1
}

// Reset restores the pristine (slot-0, pre-event) state: no faults, and
// distances and route entries copied verbatim from the base topology, so a
// fresh engine over an unfired plan routes exactly like the base. When no
// event has fired since the last Reset the state is already pristine and
// only the plan cursor rewinds.
func (ft *FaultedTopology) Reset() {
	if ft.pristine {
		ft.next = 0
		ft.rowsRebuilt = 0
		return
	}
	ft.pristine = true
	ft.next = 0
	ft.rowsRebuilt = 0
	for u := 0; u < ft.n; u++ {
		ft.nodeDown[u] = false
		for i := range ft.txDown[u] {
			ft.txDown[u][i] = false
		}
		ft.liveOut[u] = append(ft.liveOut[u][:0], ft.baseOut[u]...)
	}
	for c := 0; c < ft.m; c++ {
		ft.couplerDown[c] = false
		ft.liveHeads[c] = append(ft.liveHeads[c][:0], ft.baseHeads[c]...)
	}
	if dr, ok := ft.base.(sim.DistanceRowed); ok {
		for u, row := range dr.DistanceRows() {
			copy(ft.dist[u], row)
		}
	} else {
		for u := 0; u < ft.n; u++ {
			for v := 0; v < ft.n; v++ {
				ft.dist[u][v] = ft.base.Distance(u, v)
			}
		}
	}
	if rt, ok := ft.base.(sim.RouteTabled); ok {
		copy(ft.routeFlat, rt.RouteTable())
	} else {
		// Generic bases are queried per pair; the delivers-here bit is the
		// exact head-set membership the engine needs: dst ∈ Heads(coupler).
		hears := make([]bool, ft.m)
		for dst := 0; dst < ft.n; dst++ {
			for _, c := range ft.headOf[dst] {
				hears[c] = true
			}
			for u := 0; u < ft.n; u++ {
				c, hop := ft.base.NextCoupler(u, dst)
				ft.route[u][dst] = sim.MakeRouteEntry(c, hop, c >= 0 && c < ft.m && hears[c])
			}
			for _, c := range ft.headOf[dst] {
				hears[c] = false
			}
		}
	}
	for _, row := range ft.changedRows {
		ft.clearChangedRow(row)
	}
	ft.changedRows = ft.changedRows[:0]
}

// SetPlan swaps in a new fault plan and resets to the pristine state,
// reusing every buffer: a sweep worker drives one FaultedTopology (and the
// engine compiled over it) through many fault scenarios without
// reallocating the wrapped structure or the engine's borrowed tables.
// Results are bit-for-bit identical to wrapping a fresh topology around
// the plan.
func (ft *FaultedTopology) SetPlan(plan Plan) {
	for _, ev := range plan.Events {
		ft.validate(ev.Elem)
	}
	ft.plan = plan
	ft.Reset()
}

func (ft *FaultedTopology) clearChangedRow(u int) {
	row := ft.entryChanged[u*ft.n : (u+1)*ft.n]
	for i := range row {
		row[i] = false
	}
}

// RowsRebuilt returns the cumulative number of route-table rows rebuilt by
// fault/repair events since the last Reset — the incremental-repair work
// actually done, as opposed to n rows per event for a full rebuild.
func (ft *FaultedTopology) RowsRebuilt() int { return ft.rowsRebuilt }

// Plan returns the wrapped plan.
func (ft *FaultedTopology) Plan() Plan { return ft.plan }

// NodeDown reports whether node u is currently failed.
func (ft *FaultedTopology) NodeDown(u int) bool { return ft.nodeDown[u] }

// --- sim.Topology ---

// Nodes returns the base node count; failed nodes keep their ids.
func (ft *FaultedTopology) Nodes() int { return ft.n }

// Couplers returns the base coupler count; failed couplers keep their ids.
func (ft *FaultedTopology) Couplers() int { return ft.m }

// OutCouplers lists the couplers node u can currently transmit on.
func (ft *FaultedTopology) OutCouplers(u int) []int { return ft.liveOut[u] }

// Heads lists the live nodes currently hearing coupler c.
func (ft *FaultedTopology) Heads(c int) []int { return ft.liveHeads[c] }

// Distance returns the hop distance on the surviving structure
// (digraph.Unreachable when dst is cut off).
func (ft *FaultedTopology) Distance(u, dst int) int { return ft.dist[u][dst] }

// NextCoupler is the O(1) route-table lookup, same contract as the base.
func (ft *FaultedTopology) NextCoupler(u, dst int) (int, int) {
	r := ft.route[u][dst]
	return r.Coupler(), r.NextHop()
}

// RouteTable lends the engine the live flat route table (sim.RouteTabled).
// Advance repairs its rows in place, so the compiled engine follows fault
// reroutes without recompiling.
func (ft *FaultedTopology) RouteTable() []sim.RouteEntry { return ft.routeFlat }

// DistanceRows lends the engine the live surviving-structure distance rows
// (sim.DistanceRowed); Advance rewrites row contents in place.
func (ft *FaultedTopology) DistanceRows() [][]int { return ft.dist }

// --- sim.DynamicTopology ---

// Advance applies every plan event scheduled at or before slot. With no
// pending event it is a two-comparison no-op, keeping fault-free and
// between-event slots as cheap as on a static topology.
func (ft *FaultedTopology) Advance(slot int) sim.TopologyChange {
	if ft.next >= len(ft.plan.Events) || ft.plan.Events[ft.next].Slot > slot {
		return sim.TopologyChange{}
	}
	ft.pristine = false
	// Clear the per-event delta state of the previous batch.
	for _, row := range ft.changedRows {
		ft.clearChangedRow(row)
	}
	ft.changedRows = ft.changedRows[:0]
	ft.failedNodes = ft.failedNodes[:0]
	for u := 0; u < ft.n; u++ {
		ft.distChanged[u] = false
		ft.dirty[u] = false
	}

	// 1. Apply the masks, marking nodes whose local structure (their own
	// transmitters, or the head sets of couplers they transmit on) changed.
	for ft.next < len(ft.plan.Events) && ft.plan.Events[ft.next].Slot <= slot {
		ev := ft.plan.Events[ft.next]
		ft.next++
		el := ev.Elem
		switch el.Kind {
		case KindNode:
			if ft.nodeDown[el.Node] == !ev.Repair {
				continue // redundant event
			}
			ft.nodeDown[el.Node] = !ev.Repair
			if !ev.Repair {
				ft.failedNodes = append(ft.failedNodes, el.Node)
			}
			ft.dirty[el.Node] = true
			for _, c := range ft.headOf[el.Node] {
				ft.markTailsDirty(c)
			}
		case KindCoupler:
			if ft.couplerDown[el.Coupler] == !ev.Repair {
				continue
			}
			ft.couplerDown[el.Coupler] = !ev.Repair
			ft.markTailsDirty(el.Coupler)
		case KindTransmitter:
			i := ft.txIndex(el.Node, el.Coupler)
			if ft.txDown[el.Node][i] == !ev.Repair {
				continue
			}
			ft.txDown[el.Node][i] = !ev.Repair
			ft.dirty[el.Node] = true
		}
	}

	// 2. Rebuild the live structure from the masks (slices keep capacity).
	for u := 0; u < ft.n; u++ {
		lo := ft.liveOut[u][:0]
		if !ft.nodeDown[u] {
			for i, c := range ft.baseOut[u] {
				if !ft.couplerDown[c] && !ft.txDown[u][i] {
					lo = append(lo, c)
				}
			}
		}
		ft.liveOut[u] = lo
	}
	for c := 0; c < ft.m; c++ {
		lh := ft.liveHeads[c][:0]
		if !ft.couplerDown[c] {
			for _, h := range ft.baseHeads[c] {
				if !ft.nodeDown[h] {
					lh = append(lh, h)
				}
			}
		}
		ft.liveHeads[c] = lh
	}

	// 3. Recompute surviving distances, tracking which rows moved.
	for u := 0; u < ft.n; u++ {
		copy(ft.prevDist, ft.dist[u])
		ft.bfs(u)
		for v := 0; v < ft.n; v++ {
			if ft.dist[u][v] != ft.prevDist[v] {
				ft.distChanged[u] = true
				break
			}
		}
	}

	// 4. Rebuild exactly the affected route rows: a row's entries depend on
	// dist[u], u's live out-structure, and dist[h] of the heads u can reach.
	for u := 0; u < ft.n; u++ {
		if ft.dirty[u] || ft.distChanged[u] {
			continue // already marked
		}
		for _, c := range ft.liveOut[u] {
			for _, h := range ft.liveHeads[c] {
				if ft.distChanged[h] {
					ft.dirty[u] = true
					break
				}
			}
			if ft.dirty[u] {
				break
			}
		}
	}
	for u := 0; u < ft.n; u++ {
		if ft.dirty[u] || ft.distChanged[u] {
			ft.rebuildRow(u)
		}
	}

	return sim.TopologyChange{
		Changed:     true,
		FailedNodes: ft.failedNodes,
		EntryChanged: func(u, dst int) bool {
			return ft.entryChanged[u*ft.n+dst]
		},
	}
}

// markTailsDirty marks every node transmitting on coupler c for rebuild.
func (ft *FaultedTopology) markTailsDirty(c int) {
	for _, t := range ft.tails[c] {
		ft.dirty[t] = true
	}
}

// bfs recomputes dist[u] over the surviving structure. Failed nodes are
// absent from every liveHeads set, so they are never expanded; a failed
// source keeps only dist[u][u] = 0.
func (ft *FaultedTopology) bfs(u int) {
	row := ft.dist[u]
	for v := range row {
		row[v] = digraph.Unreachable
	}
	row[u] = 0
	q := ft.bfsQueue[:0]
	q = append(q, u)
	for head := 0; head < len(q); head++ {
		v := q[head]
		for _, c := range ft.liveOut[v] {
			for _, h := range ft.liveHeads[c] {
				if row[h] == digraph.Unreachable {
					row[h] = row[v] + 1
					q = append(q, h)
				}
			}
		}
	}
	ft.bfsQueue = q[:0]
}

// rebuildRow recomputes route[u], flagging entries that changed.
func (ft *FaultedTopology) rebuildRow(u int) {
	ft.rowsRebuilt++
	rowFlagged := false
	for dst := 0; dst < ft.n; dst++ {
		e := ft.scanEntry(u, dst)
		if e != ft.route[u][dst] {
			ft.route[u][dst] = e
			ft.entryChanged[u*ft.n+dst] = true
			rowFlagged = true
		}
	}
	if rowFlagged {
		ft.changedRows = append(ft.changedRows, u)
	}
}

// scanEntry picks, in coupler and head order (same tie-breaking as the
// base topologies' construction-time oracles), the coupler whose live head
// set contains the node strictly closest to dst on the surviving
// distances. The scan walks live head sets and only dst itself is at
// distance 0, so the chosen next hop is dst exactly when dst hears the
// chosen coupler — which is the packed delivers-here bit.
func (ft *FaultedTopology) scanEntry(u, dst int) sim.RouteEntry {
	if u == dst {
		return sim.MakeRouteEntry(-1, u, false)
	}
	best, bestHop := -1, -1
	bestDist := ft.dist[u][dst]
	if bestDist == digraph.Unreachable {
		return sim.MakeRouteEntry(-1, -1, false)
	}
	for _, c := range ft.liveOut[u] {
		for _, h := range ft.liveHeads[c] {
			d := ft.dist[h][dst]
			if d != digraph.Unreachable && d < bestDist {
				bestDist = d
				best, bestHop = c, h
			}
		}
	}
	return sim.MakeRouteEntry(best, bestHop, best >= 0 && bestHop == dst)
}
