// Package faults makes hardware failure a first-class simulation axis for
// the multi-OPS networks of the paper. The paper's §2.5 (after Imase,
// Soneoka and Okada) claims Kautz label routing survives up to d-1 faults
// with paths of length at most k+2; internal/kautz validates that claim
// statically over frozen fault sets. This package validates it dynamically:
// deterministic fault plans schedule permanent and transient failures of
// processors (nodes), OPS couplers and individual transmitters, and
// FaultedTopology replays them into a live sim.Engine run, masking failed
// elements and incrementally repairing the precomputed routing tables so
// the engine's hot path stays an O(1) table lookup between events.
package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"otisnet/internal/sim"
)

// Kind selects the hardware element class a fault strikes.
type Kind int

const (
	// KindNode fails a processor: it stops transmitting, receiving and
	// relaying, and messages queued there are lost. In a stack network,
	// failing every member of a group models the paper's §2.5 fault unit.
	KindNode Kind = iota
	// KindCoupler fails an OPS coupler: no node can transmit on it.
	KindCoupler
	// KindTransmitter fails one node's transmitter on one coupler; the
	// coupler keeps serving its other tails.
	KindTransmitter
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNode:
		return "node"
	case KindCoupler:
		return "coupler"
	case KindTransmitter:
		return "tx"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Element identifies one failable hardware element.
type Element struct {
	Kind    Kind
	Node    int // valid for KindNode and KindTransmitter
	Coupler int // valid for KindCoupler and KindTransmitter
}

// String renders the element compactly, e.g. "node17" or "tx3@c12".
func (e Element) String() string {
	switch e.Kind {
	case KindNode:
		return fmt.Sprintf("node%d", e.Node)
	case KindCoupler:
		return fmt.Sprintf("coupler%d", e.Coupler)
	default:
		return fmt.Sprintf("tx%d@c%d", e.Node, e.Coupler)
	}
}

// Event is one scheduled state change: at slot Slot the element fails
// (Repair == false) or comes back (Repair == true). Events at slot s take
// effect before slot s's transmissions.
type Event struct {
	Slot   int
	Repair bool
	Elem   Element
}

// Plan is a deterministic fault schedule: events sorted by slot (stable, so
// same-slot events apply in construction order). The zero value is the
// fault-free plan.
type Plan struct {
	Name   string
	Events []Event
}

// Empty reports whether the plan schedules no events.
func (p Plan) Empty() bool { return len(p.Events) == 0 }

// NewPlan builds a plan from explicit events, stably sorting them by slot.
func NewPlan(name string, events ...Event) Plan {
	sorted := append([]Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Slot < sorted[j].Slot })
	return Plan{Name: name, Events: sorted}
}

// FixedNodes schedules the given nodes to fail permanently at slot.
func FixedNodes(slot int, nodes ...int) Plan {
	events := make([]Event, len(nodes))
	for i, u := range nodes {
		events[i] = Event{Slot: slot, Elem: Element{Kind: KindNode, Node: u}}
	}
	return Plan{Name: fmt.Sprintf("fixed-nodes×%d@%d", len(nodes), slot), Events: events}
}

// pick returns the first k elements of a seeded permutation of universe.
// For a fixed seed the k-element set is nested inside the (k+1)-element
// set, which is what makes degradation curves over fault counts monotone
// scenarios of the same underlying failure order.
func pick(universe []Element, k int, seed int64) []Element {
	if k > len(universe) {
		k = len(universe)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(universe))
	out := make([]Element, k)
	for i := 0; i < k; i++ {
		out[i] = universe[perm[i]]
	}
	return out
}

// universe enumerates every element of the given kind on the topology.
func universe(kind Kind, topo sim.Topology) []Element {
	var out []Element
	switch kind {
	case KindNode:
		for u := 0; u < topo.Nodes(); u++ {
			out = append(out, Element{Kind: KindNode, Node: u})
		}
	case KindCoupler:
		for c := 0; c < topo.Couplers(); c++ {
			out = append(out, Element{Kind: KindCoupler, Coupler: c})
		}
	case KindTransmitter:
		for u := 0; u < topo.Nodes(); u++ {
			for _, c := range topo.OutCouplers(u) {
				out = append(out, Element{Kind: KindTransmitter, Node: u, Coupler: c})
			}
		}
	}
	return out
}

// Random schedules k seeded-random distinct elements of the given kind to
// fail permanently at slot ("k-random-at-slot-s"). Same seed, larger k:
// superset of failures.
func Random(kind Kind, k, slot int, topo sim.Topology, seed int64) Plan {
	elems := pick(universe(kind, topo), k, seed)
	events := make([]Event, len(elems))
	for i, el := range elems {
		events[i] = Event{Slot: slot, Elem: el}
	}
	return NewPlan(fmt.Sprintf("%s×%d@%d", kind, k, slot), events...)
}

// Stochastic schedules transient failures: k seeded-random elements of the
// given kind each alternate up/down with exponentially distributed times of
// mean MTBF (up) and MTTR (down) slots, truncated at horizon. The process
// is deterministic for a given seed.
func Stochastic(kind Kind, k int, topo sim.Topology, mtbf, mttr float64, horizon int, seed int64) Plan {
	if mtbf <= 0 || mttr <= 0 {
		panic(fmt.Sprintf("faults: MTBF and MTTR must be positive (got %g, %g)", mtbf, mttr))
	}
	rng := rand.New(rand.NewSource(seed))
	elems := pick(universe(kind, topo), k, rng.Int63())
	var events []Event
	for _, el := range elems {
		t := rng.ExpFloat64() * mtbf
		for int(t) < horizon {
			events = append(events, Event{Slot: int(t), Elem: el})
			t += rng.ExpFloat64() * mttr
			if int(t) >= horizon {
				break
			}
			events = append(events, Event{Slot: int(t), Repair: true, Elem: el})
			t += rng.ExpFloat64() * mtbf
		}
	}
	return NewPlan(fmt.Sprintf("%s-mtbf%g/%g×%d", kind, mtbf, mttr, k), events...)
}
