package core

import "fmt"

// Verify proves the design end to end:
//
//  1. the netlist is complete (every port wired exactly once);
//  2. every transmitter beam, traced through lenses, multiplexers, the
//     central OTIS (or fiber loop) and beam-splitters, reaches *exactly*
//     the S receiver arrays of the destination group predicted by the
//     Imase-Itoh algebra (DestGroup), hitting each processor exactly once;
//  3. the union of beam destinations per group equals the out-neighborhood
//     of the group in the target stack-graph's base digraph.
//
// A nil return is the machine-checked statement of Proposition 1 lifted to
// the full network designs of §4.
func (d *Design) Verify() error {
	if err := d.NL.Validate(); err != nil {
		return fmt.Errorf("%s: %w", d.Name, err)
	}
	deg := d.NodeDegree()

	// Index receiver components -> (group, member).
	rxAt := map[int][2]int{}
	for x := 0; x < d.Groups; x++ {
		for y := 0; y < d.S; y++ {
			rxAt[d.Rx[x][y]] = [2]int{x, y}
		}
	}

	base := d.GroupDigraph()
	for x := 0; x < d.Groups; x++ {
		reached := map[int]int{} // destination group -> beam count
		for y := 0; y < d.S; y++ {
			for b := 0; b < deg; b++ {
				sinks, err := d.NL.Trace(d.Tx[x][y], b)
				if err != nil {
					return fmt.Errorf("%s: tracing (%d,%d) beam %d: %w", d.Name, x, y, b, err)
				}
				want := d.DestGroup(x, b)
				if len(sinks) != d.S {
					return fmt.Errorf("%s: beam (%d,%d,%d) reaches %d receivers, want %d",
						d.Name, x, y, b, len(sinks), d.S)
				}
				members := map[int]bool{}
				for _, s := range sinks {
					loc, ok := rxAt[s.Comp]
					if !ok {
						return fmt.Errorf("%s: beam (%d,%d,%d) hit non-processor component %d",
							d.Name, x, y, b, s.Comp)
					}
					if loc[0] != want {
						return fmt.Errorf("%s: beam (%d,%d,%d) hit group %d, want group %d",
							d.Name, x, y, b, loc[0], want)
					}
					if members[loc[1]] {
						return fmt.Errorf("%s: beam (%d,%d,%d) hit member %d twice",
							d.Name, x, y, b, loc[1])
					}
					members[loc[1]] = true
				}
				if y == 0 {
					reached[want]++
				}
			}
		}
		// Per-group neighborhood must match the base digraph with
		// multiplicity (a group with both an II self-arc and a loop coupler
		// reaches itself twice).
		for v := 0; v < d.Groups; v++ {
			if reached[v] != base.ArcMultiplicity(x, v) {
				return fmt.Errorf("%s: group %d reaches group %d via %d couplers, want %d",
					d.Name, x, v, reached[v], base.ArcMultiplicity(x, v))
			}
		}
	}
	return nil
}

// BOMSummary returns the bill of materials as a formatted table — the
// component counts the paper quotes for Figures 11 and 12.
func (d *Design) BOMSummary() string {
	bom, classes := d.NL.BOM()
	s := fmt.Sprintf("%s bill of materials (%d components, %d wires):\n",
		d.Name, d.NL.Components(), d.NL.Wires())
	for _, c := range classes {
		s += fmt.Sprintf("  %4d x %s\n", bom[c], c)
	}
	return s
}
