package core

import (
	"math"
	"testing"

	"otisnet/internal/optical"
)

// Power integration: the worst-case received power of a built design must
// match the closed-form path budget. An inter-group path of SK traverses
// group-input OTIS + mux + central OTIS + splitter + group-output OTIS;
// the loop path swaps the central OTIS for a fiber.
func TestDesignWorstCasePowerClosedForm(t *testing.T) {
	d := DesignStackKautz(6, 3, 2)
	pm := optical.DefaultPowerModel()
	worst, err := d.NL.WorstCasePower(pm)
	if err != nil {
		t.Fatal(err)
	}
	split := 10 * math.Log10(6) // degree-6 splitters
	inter := pm.LaunchDBm - 3*pm.OTISLossDB - pm.MuxLossDB - pm.SplitterExcessDB - split
	loop := pm.LaunchDBm - 2*pm.OTISLossDB - pm.FiberLossDB - pm.MuxLossDB - pm.SplitterExcessDB - split
	want := math.Min(inter, loop)
	if math.Abs(worst-want) > 1e-9 {
		t.Fatalf("worst-case power %v dBm, want %v (inter %v, loop %v)",
			worst, want, inter, loop)
	}
}

func TestPOPSWorstCasePowerClosedForm(t *testing.T) {
	d := DesignPOPS(4, 2)
	pm := optical.DefaultPowerModel()
	worst, err := d.NL.WorstCasePower(pm)
	if err != nil {
		t.Fatal(err)
	}
	// Every POPS path: group-in OTIS + mux + central OTIS + splitter +
	// group-out OTIS.
	want := pm.LaunchDBm - 3*pm.OTISLossDB - pm.MuxLossDB - pm.SplitterExcessDB - 10*math.Log10(4)
	if math.Abs(worst-want) > 1e-9 {
		t.Fatalf("worst-case power %v dBm, want %v", worst, want)
	}
}

// The power budget is dominated by the splitting loss: doubling the group
// size costs ~3 dB — the scaling law that caps s (introduction's
// technology argument).
func TestPowerScalesWithGroupSize(t *testing.T) {
	pm := optical.DefaultPowerModel()
	w8, err := DesignStackKautz(8, 2, 2).NL.WorstCasePower(pm)
	if err != nil {
		t.Fatal(err)
	}
	w16, err := DesignStackKautz(16, 2, 2).NL.WorstCasePower(pm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((w8-w16)-10*math.Log10(2)) > 1e-9 {
		t.Fatalf("doubling s should cost exactly 3.01 dB, got %v", w8-w16)
	}
}
