package core

import (
	"strings"
	"testing"
	"testing/quick"

	"otisnet/internal/optical"
	"otisnet/internal/stackkautz"
)

func TestBuildGroupInputFig8(t *testing.T) {
	// Fig. 8: 6 processors, 4 multiplexers, one OTIS(6,4).
	nl := optical.NewNetlist()
	txs, muxes := BuildGroupInput(nl, 6, 4, "g")
	if len(txs) != 6 || len(muxes) != 4 {
		t.Fatalf("txs=%d muxes=%d", len(txs), len(muxes))
	}
	if nl.Count("OTIS(6,4)") != 1 || nl.Count("MUX(6)") != 4 || nl.Count("TX[4]") != 6 {
		bom, _ := nl.BOM()
		t.Fatalf("BOM wrong: %v", bom)
	}
	// Each beam must land in exactly one mux; beam b of any processor in
	// mux 4-1-b.
	for y := 0; y < 6; y++ {
		for b := 0; b < 4; b++ {
			if BeamForMux(4, 4-1-b) != b {
				t.Fatal("BeamForMux inconsistent")
			}
		}
	}
}

func TestBuildGroupOutputFig9(t *testing.T) {
	// Fig. 9: 3 beam-splitters, 5 processors, one OTIS(3,5).
	nl := optical.NewNetlist()
	splits, rxs := BuildGroupOutput(nl, 3, 5, "g")
	if len(splits) != 3 || len(rxs) != 5 {
		t.Fatalf("splits=%d rxs=%d", len(splits), len(rxs))
	}
	if nl.Count("OTIS(3,5)") != 1 || nl.Count("SPLITTER(5)") != 3 || nl.Count("RX[3]") != 5 {
		bom, _ := nl.BOM()
		t.Fatalf("BOM wrong: %v", bom)
	}
}

func TestGroupBlocksComposeEndToEnd(t *testing.T) {
	// Wire a group-input block directly into a group-output block through
	// bare fibers (degree-1 "couplers"): every beam of every processor must
	// reach all 5 receivers of the destination side exactly once per port.
	nl := optical.NewNetlist()
	txs, muxes := BuildGroupInput(nl, 5, 3, "in")
	splits, rxs := BuildGroupOutput(nl, 3, 5, "out")
	for m := range muxes {
		f := nl.AddComponent(optical.Fiber, "FIBER", nl.Component(muxes[m]).Name+"/f", 1, 1, nil)
		nl.MustConnect(muxes[m], 0, f, 0)
		nl.MustConnect(f, 0, splits[m], 0)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	for y, tx := range txs {
		for b := 0; b < 3; b++ {
			sinks, err := nl.Trace(tx, b)
			if err != nil {
				t.Fatalf("trace (%d,%d): %v", y, b, err)
			}
			if len(sinks) != 5 {
				t.Fatalf("beam (%d,%d) reached %d sinks, want 5", y, b, len(sinks))
			}
			seen := map[int]bool{}
			for _, s := range sinks {
				if seen[s.Comp] {
					t.Fatal("duplicate receiver")
				}
				seen[s.Comp] = true
			}
			for _, rx := range rxs {
				if !seen[rx] {
					t.Fatal("missed a receiver")
				}
			}
		}
	}
}

func TestDesignPOPSFig11(t *testing.T) {
	// Fig. 11: POPS(4,2) uses 2 group-input OTIS(4,2), 2 group-output
	// OTIS(2,4), one central OTIS(2,2), 4 muxes and 4 splitters.
	d := DesignPOPS(4, 2)
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	checks := map[string]int{
		"OTIS(4,2)": 2, "OTIS(2,4)": 2, "OTIS(2,2)": 1,
		"MUX(4)": 4, "SPLITTER(4)": 4, "TX[2]": 8, "RX[2]": 8,
	}
	for class, want := range checks {
		if got := d.NL.Count(class); got != want {
			t.Errorf("%s count = %d, want %d", class, got, want)
		}
	}
	if d.NL.Count("FIBER") != 0 {
		t.Error("POPS needs no fiber loops (K+g loops ride the central OTIS)")
	}
}

func TestDesignPOPSDestGroup(t *testing.T) {
	// POPS beam b of any group drives coupler (x, b): destination group b.
	d := DesignPOPS(3, 4)
	for x := 0; x < 4; x++ {
		for b := 0; b < 4; b++ {
			if got := d.DestGroup(x, b); got != b {
				t.Fatalf("DestGroup(%d,%d) = %d, want %d", x, b, got, b)
			}
		}
	}
}

func TestDesignStackKautzFig12(t *testing.T) {
	// Fig. 12 / §4.2: SK(6,3,2) uses 12 OTIS(6,4), 12 OTIS(4,6), 48
	// multiplexers, 48 beam-splitters and one OTIS(3,12); loops by fiber.
	d := DesignStackKautz(6, 3, 2)
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	checks := map[string]int{
		"OTIS(6,4)": 12, "OTIS(4,6)": 12, "OTIS(3,12)": 1,
		"MUX(6)": 48, "SPLITTER(6)": 48, "FIBER": 12,
		"TX[4]": 72, "RX[4]": 72,
	}
	for class, want := range checks {
		if got := d.NL.Count(class); got != want {
			t.Errorf("%s count = %d, want %d", class, got, want)
		}
	}
	if d.N() != 72 || d.NodeDegree() != 4 {
		t.Fatal("SK(6,3,2) node parameters wrong")
	}
}

func TestDesignVerifySweep(t *testing.T) {
	// End-to-end verification across a family of designs.
	designs := []*Design{
		DesignPOPS(1, 1),
		DesignPOPS(2, 2),
		DesignPOPS(4, 2),
		DesignPOPS(2, 5),
		DesignStackKautz(2, 2, 2),
		DesignStackKautz(3, 2, 3),
		DesignStackKautz(1, 3, 2),
		DesignStackImase(2, 3, 10), // non-Kautz order, has an II self-arc
		DesignStackImase(3, 2, 7),
		DesignStackImase(2, 4, 3), // n < d: parallel arcs in II
	}
	for _, d := range designs {
		if err := d.Verify(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestDesignMatchesStackKautzTopology(t *testing.T) {
	// The design's group digraph must be isomorphic (as II is to Kautz) to
	// the stack-Kautz network's base digraph.
	sk := stackkautz.New(3, 2, 2)
	d := DesignStackKautz(3, 2, 2)
	num := stackkautz.GroupNumbering(sk)
	if num == nil {
		t.Fatal("group numbering must exist")
	}
	kg := sk.Kautz().Digraph() // no loops; design adds loop per group
	gd := d.GroupDigraph()
	for u := 0; u < kg.N(); u++ {
		for _, v := range kg.Out(u) {
			if !gd.HasArc(num[u], num[v]) {
				t.Fatalf("design missing arc for Kautz arc %d->%d", u, v)
			}
		}
		if !gd.HasLoop(num[u]) {
			t.Fatalf("design missing loop at group %d", num[u])
		}
	}
}

func TestTargetStackGraphShape(t *testing.T) {
	d := DesignStackKautz(6, 3, 2)
	sg := d.TargetStackGraph()
	if sg.N() != 72 || sg.M() != 48 {
		t.Fatalf("target stack graph: n=%d m=%d, want 72, 48", sg.N(), sg.M())
	}
	if sg.Diameter() != 2 {
		t.Fatalf("target diameter = %d, want 2", sg.Diameter())
	}
}

func TestBOMSummaryFormat(t *testing.T) {
	s := DesignPOPS(2, 2).BOMSummary()
	if !strings.Contains(s, "POPS(2,2)") || !strings.Contains(s, "OTIS(2,2)") {
		t.Fatalf("summary missing content:\n%s", s)
	}
}

func TestDestGroupPanics(t *testing.T) {
	d := DesignPOPS(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid beam should panic")
		}
	}()
	d.DestGroup(0, 5)
}

func TestBuildInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid parameters should panic")
		}
	}()
	DesignPOPS(0, 2)
}

// The closed-form BOM of §4: POPS(t,g) uses g OTIS(t,g) + g OTIS(g,t) +
// 1 OTIS(g,g) + g² muxes of degree t + g² splitters; SK-like designs over n
// groups use n OTIS(s,d+1) + n OTIS(d+1,s) + 1 OTIS(d,n) + n(d+1) muxes +
// n(d+1) splitters + n fibers.
func TestClosedFormBOMProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		tt := 1 + int(a)%4
		g := 1 + int(b)%4
		d := DesignPOPS(tt, g)
		bom, _ := d.NL.BOM()
		popsOK :=
			bom[otisClass(tt, g)] >= g && // == g unless classes collide (t==g)
				bom[otisClass(g, tt)] >= g &&
				totalMux(bom) == g*g &&
				totalSplit(bom) == g*g
		if tt != g {
			popsOK = popsOK && bom[otisClass(tt, g)] == g && bom[otisClass(g, tt)] == g &&
				bom[otisClass(g, g)] == 1
		} else {
			// All three classes coincide: 2g+1 blocks of OTIS(g,g).
			popsOK = popsOK && bom[otisClass(g, g)] == 2*g+1
		}
		s := 1 + int(b)%3
		dd := 2 + int(a)%2
		n := 2 + int(a+b)%8
		sk := DesignStackImase(s, dd, n)
		skBOM, _ := sk.NL.BOM()
		skOK := skBOM["FIBER"] == n &&
			totalMux(skBOM) == n*(dd+1) &&
			totalSplit(skBOM) == n*(dd+1) &&
			skBOM[otisClass(dd, n)] >= 1
		return popsOK && skOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func otisClass(g, t int) string {
	return "OTIS(" + itoa(g) + "," + itoa(t) + ")"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func totalMux(bom map[string]int) int {
	c := 0
	for class, n := range bom {
		if strings.HasPrefix(class, "MUX(") {
			c += n
		}
	}
	return c
}

func totalSplit(bom map[string]int) int {
	c := 0
	for class, n := range bom {
		if strings.HasPrefix(class, "SPLITTER(") {
			c += n
		}
	}
	return c
}

// Property: random stack-Imase designs always verify end to end.
func TestRandomDesignsVerifyProperty(t *testing.T) {
	f := func(su, du, nu uint8) bool {
		s := 1 + int(su)%3
		d := 1 + int(du)%3
		n := 1 + int(nu)%12
		return DesignStackImase(s, d, n).Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
