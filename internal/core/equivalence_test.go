package core

// The strongest form of design verification: reconstruct the hypergraph a
// design physically realizes — one hyperarc per (group, beam), its tail
// the group's transmitters, its head the receivers the traced light
// reaches — and check it EQUALS (as a multiset of hyperarcs) the target
// stack-graph ς(s, base). This closes the loop between the optics and the
// combinatorial model with no intermediate abstraction.

import (
	"testing"

	"otisnet/internal/hypergraph"
)

func tracedHypergraph(t *testing.T, d *Design) *hypergraph.Hypergraph {
	t.Helper()
	h := hypergraph.New(d.N())
	for x := 0; x < d.Groups; x++ {
		tail := make([]int, d.S)
		for y := 0; y < d.S; y++ {
			tail[y] = x*d.S + y
		}
		for b := 0; b < d.NodeDegree(); b++ {
			sinks, err := d.NL.Trace(d.Tx[x][0], b)
			if err != nil {
				t.Fatalf("trace (%d,0,%d): %v", x, b, err)
			}
			head := make([]int, 0, len(sinks))
			for _, s := range sinks {
				// Identify the receiver's (group, member) via the Rx index.
				found := false
				for g := 0; g < d.Groups && !found; g++ {
					for y := 0; y < d.S; y++ {
						if d.Rx[g][y] == s.Comp {
							head = append(head, g*d.S+y)
							found = true
							break
						}
					}
				}
				if !found {
					t.Fatalf("sink component %d is not a processor", s.Comp)
				}
			}
			h.AddHyperarc(tail, head)
		}
	}
	return h
}

func TestTracedHypergraphEqualsTargetSK(t *testing.T) {
	for _, p := range []struct{ s, d, k int }{{2, 2, 2}, {6, 3, 2}, {3, 2, 3}} {
		d := DesignStackKautz(p.s, p.d, p.k)
		got := tracedHypergraph(t, d)
		want := d.TargetStackGraph()
		if !got.Equal(want.Hypergraph) {
			t.Errorf("SK(%d,%d,%d): traced hypergraph differs from ς(s, II⁺)", p.s, p.d, p.k)
		}
	}
}

func TestTracedHypergraphEqualsTargetPOPS(t *testing.T) {
	for _, p := range []struct{ t, g int }{{4, 2}, {2, 3}, {3, 3}} {
		d := DesignPOPS(p.t, p.g)
		got := tracedHypergraph(t, d)
		want := d.TargetStackGraph()
		if !got.Equal(want.Hypergraph) {
			t.Errorf("POPS(%d,%d): traced hypergraph differs from ς(t, K⁺g)", p.t, p.g)
		}
	}
}

func TestTracedHypergraphEqualsTargetStackII(t *testing.T) {
	d := DesignStackImase(2, 3, 10) // has an II self-arc AND a loop coupler
	got := tracedHypergraph(t, d)
	if !got.Equal(d.TargetStackGraph().Hypergraph) {
		t.Error("stack-II(2,3,10): traced hypergraph differs from target")
	}
}
