// Package core is the paper's primary contribution as a library: it
// assembles OTIS free-space blocks, optical multiplexers, beam-splitters
// and fiber loopbacks into complete optical designs for multi-OPS networks,
// and *proves* each design correct by tracing every transmitter beam
// through the netlist and comparing the receivers it reaches with the
// target stack-graph topology.
//
// Three constructions from the paper are provided:
//
//   - BuildGroupInput / BuildGroupOutput — §3.1, Figures 8 and 9: one
//     OTIS(t,g) connects the t processors of a group (g transmitter beams
//     each) to g optical multiplexers; one OTIS(g,t) connects g
//     beam-splitters to the t processors (g receiver ports each).
//   - DesignPOPS — §4.1, Figure 11: POPS(t,g) with g input-side OTIS(t,g),
//     g output-side OTIS(g,t), g² couplers and one central OTIS(g,g)
//     (II(g,g) = K⁺_g, so the loops ride through the OTIS).
//   - DesignStackKautz / DesignStackImase — §4.2, Figure 12: SK(s,d,k)
//     (more generally ς(s, II⁺(d,n))) with one OTIS(s,d+1) and one
//     OTIS(d+1,s) per group, n(d+1) couplers, one central OTIS(d,n) and
//     one fiber loopback per group.
package core

import (
	"fmt"

	"otisnet/internal/digraph"
	"otisnet/internal/hypergraph"
	"otisnet/internal/imase"
	"otisnet/internal/kautz"
	"otisnet/internal/optical"
	"otisnet/internal/otis"
)

// Design is a complete optical design for a multi-OPS network: a validated
// netlist plus the node bookkeeping needed to verify it against its target
// topology.
type Design struct {
	// Name describes the design ("POPS(4,2)", "SK(6,3,2)", ...).
	Name string
	// NL is the component netlist.
	NL *optical.Netlist
	// S is the group size (coupler degree), Groups the group count.
	S, Groups int
	// DD is the number of couplers per group routed through the central
	// OTIS(DD, Groups); Loop indicates one extra loop coupler per group
	// wired by fiber. The per-node degree is DD + (Loop ? 1 : 0).
	DD   int
	Loop bool
	// Tx[x][y] and Rx[x][y] are the component ids of the transmitter and
	// receiver arrays of processor (group x, member y).
	Tx, Rx [][]int
}

// NodeDegree returns the number of beams per processor.
func (d *Design) NodeDegree() int {
	if d.Loop {
		return d.DD + 1
	}
	return d.DD
}

// N returns the number of processors.
func (d *Design) N() int { return d.S * d.Groups }

// DesignPOPS builds the complete optical design of POPS(t,g) (Fig. 11).
func DesignPOPS(t, g int) *Design {
	d := buildMultiOPS(t, g, g, false)
	d.Name = fmt.Sprintf("POPS(%d,%d)", t, g)
	return d
}

// DesignStackImase builds the complete optical design of the
// stack-Imase-Itoh network ς(s, II⁺(d,n)): group adjacency II(d,n) through
// a central OTIS(d,n), plus a fiber loop coupler per group.
func DesignStackImase(s, d, n int) *Design {
	de := buildMultiOPS(s, d, n, true)
	de.Name = fmt.Sprintf("stack-II(%d,%d,%d)", s, d, n)
	return de
}

// DesignStackKautz builds the complete optical design of SK(s,d,k)
// (Fig. 12). Groups are numbered as II(d, d^{k-1}(d+1)) nodes, which by
// Corollary 1 is the Kautz graph; use stackkautz.GroupNumbering to map
// Kautz words onto this numbering.
func DesignStackKautz(s, d, k int) *Design {
	de := buildMultiOPS(s, d, kautz.N(d, k), true)
	de.Name = fmt.Sprintf("SK(%d,%d,%d)", s, d, k)
	return de
}

// buildMultiOPS assembles the generic multi-OPS design: groups of size s,
// dd inter-group couplers per group through a central OTIS(dd, groups),
// optionally one loop coupler per group by fiber.
func buildMultiOPS(s, dd, groups int, loop bool) *Design {
	if s < 1 || dd < 1 || groups < 1 {
		panic(fmt.Sprintf("core: invalid design s=%d dd=%d groups=%d", s, dd, groups))
	}
	deg := dd
	if loop {
		deg++
	}
	nl := optical.NewNetlist()
	d := &Design{
		NL: nl, S: s, Groups: groups, DD: dd, Loop: loop,
		Tx: make([][]int, groups), Rx: make([][]int, groups),
	}

	central := otis.New(dd, groups)
	centralID := nl.AddComponent(optical.OTISBlock, central.String(),
		"central/"+central.String(), central.Ports(), central.Ports(), central.Permutation())

	muxes := make([][]int, groups)  // muxes[x][m]: mux m of group x
	splits := make([][]int, groups) // splits[x][a]: splitter a of group x
	for x := 0; x < groups; x++ {
		txs, mx := BuildGroupInput(nl, s, deg, fmt.Sprintf("group%d", x))
		sp, rxs := BuildGroupOutput(nl, deg, s, fmt.Sprintf("group%d", x))
		d.Tx[x] = txs
		d.Rx[x] = rxs
		muxes[x] = mx
		splits[x] = sp
	}

	// Central interconnection: group x's muxes 0..dd-1 feed the central
	// OTIS inputs dd·x .. dd·x+dd-1 (the Proposition 1 association); its
	// outputs dd·v+a feed splitter a of group v. The loop mux (index dd)
	// loops back by fiber to the loop splitter of the same group.
	for x := 0; x < groups; x++ {
		for m := 0; m < dd; m++ {
			nl.MustConnect(muxes[x][m], 0, centralID, dd*x+m)
		}
		if loop {
			f := nl.AddComponent(optical.Fiber, "FIBER",
				fmt.Sprintf("group%d/loop", x), 1, 1, nil)
			nl.MustConnect(muxes[x][dd], 0, f, 0)
			nl.MustConnect(f, 0, splits[x][dd], 0)
		}
	}
	for o := 0; o < central.Ports(); o++ {
		v, a := o/dd, o%dd
		nl.MustConnect(centralID, o, splits[v][a], 0)
	}
	return d
}

// BuildGroupInput realizes §3.1 / Fig. 8: the p transmitter beams of each
// of t processors reach p optical multiplexers of t inputs each, through
// one OTIS(t,p). It returns the transmitter-array and multiplexer
// component ids (mux m collects the beams aimed at coupler m). The wiring:
// beam b of processor y enters OTIS input (y,b) and exits at output
// (p-1-b, t-1-y), i.e. mux p-1-b, port t-1-y.
func BuildGroupInput(nl *optical.Netlist, t, p int, prefix string) (txs, muxes []int) {
	o := otis.New(t, p)
	blk := nl.AddComponent(optical.OTISBlock, o.String(),
		fmt.Sprintf("%s/in-%s", prefix, o), o.Ports(), o.Ports(), o.Permutation())
	txs = make([]int, t)
	for y := 0; y < t; y++ {
		txs[y] = nl.AddComponent(optical.TxArray, fmt.Sprintf("TX[%d]", p),
			fmt.Sprintf("%s/tx%d", prefix, y), 0, p, nil)
		for b := 0; b < p; b++ {
			nl.MustConnect(txs[y], b, blk, o.InputIndex(y, b))
		}
	}
	muxes = make([]int, p)
	for m := 0; m < p; m++ {
		muxes[m] = nl.AddComponent(optical.Mux, fmt.Sprintf("MUX(%d)", t),
			fmt.Sprintf("%s/mux%d", prefix, m), t, 1, nil)
	}
	for oi := 0; oi < p; oi++ {
		for oj := 0; oj < t; oj++ {
			nl.MustConnect(blk, o.OutputIndex(oi, oj), muxes[oi], oj)
		}
	}
	// The beam aimed at mux m is beam p-1-m: invert so callers can reason
	// in mux order. (Documented by BeamForMux.)
	return txs, muxes
}

// BeamForMux returns which transmitter beam index reaches mux m in a
// BuildGroupInput block with p muxes: the OTIS transpose sends beam b to
// mux p-1-b, so the beam for mux m is p-1-m.
func BeamForMux(p, m int) int { return p - 1 - m }

// BuildGroupOutput realizes §3.1 / Fig. 9: p beam-splitters of t outputs
// each reach the t processors of a group (p receiver ports each) through
// one OTIS(p,t). It returns the splitter and receiver-array component ids
// (splitter a is the output side of incoming coupler a). The wiring:
// splitter a's output j enters OTIS input (a,j) and exits at output
// (t-1-j, p-1-a), i.e. receiver t-1-j, port p-1-a.
func BuildGroupOutput(nl *optical.Netlist, p, t int, prefix string) (splits, rxs []int) {
	o := otis.New(p, t)
	blk := nl.AddComponent(optical.OTISBlock, o.String(),
		fmt.Sprintf("%s/out-%s", prefix, o), o.Ports(), o.Ports(), o.Permutation())
	splits = make([]int, p)
	for a := 0; a < p; a++ {
		splits[a] = nl.AddComponent(optical.Splitter, fmt.Sprintf("SPLITTER(%d)", t),
			fmt.Sprintf("%s/split%d", prefix, a), 1, t, nil)
		for j := 0; j < t; j++ {
			nl.MustConnect(splits[a], j, blk, o.InputIndex(a, j))
		}
	}
	rxs = make([]int, t)
	for y := 0; y < t; y++ {
		rxs[y] = nl.AddComponent(optical.RxArray, fmt.Sprintf("RX[%d]", p),
			fmt.Sprintf("%s/rx%d", prefix, y), p, 0, nil)
	}
	for oi := 0; oi < t; oi++ {
		for oj := 0; oj < p; oj++ {
			nl.MustConnect(blk, o.OutputIndex(oi, oj), rxs[oi], oj)
		}
	}
	return splits, rxs
}

// DestGroup returns the group reached by beam b of a processor in group x,
// derived from the transpose algebra: beam b feeds mux m = deg-1-b; the
// loop mux (m == DD, only when Loop) returns to x; other muxes enter the
// central OTIS as input α = m+1 of node x and land on node
// (-DD·x - α) mod Groups — the Imase-Itoh neighborhood.
func (d *Design) DestGroup(x, b int) int {
	deg := d.NodeDegree()
	if b < 0 || b >= deg || x < 0 || x >= d.Groups {
		panic(fmt.Sprintf("core: invalid beam (%d,%d)", x, b))
	}
	m := deg - 1 - b
	if d.Loop && m == d.DD {
		return x
	}
	alpha := m + 1
	v := (-d.DD*x - alpha) % d.Groups
	if v < 0 {
		v += d.Groups
	}
	return v
}

// GroupDigraph returns the group-level digraph the design realizes:
// II(DD, Groups), plus one loop per group when Loop is set. For POPS
// (DD == Groups == g, no fiber loop) this is II(g,g) = K⁺_g.
func (d *Design) GroupDigraph() *digraph.Digraph {
	g := digraph.New(d.Groups)
	for x := 0; x < d.Groups; x++ {
		for _, v := range imase.Neighbors(d.DD, d.Groups, x) {
			g.AddArc(x, v)
		}
		if d.Loop {
			g.AddArc(x, x)
		}
	}
	return g
}

// TargetStackGraph returns the stack-graph ς(S, GroupDigraph) the design
// must realize.
func (d *Design) TargetStackGraph() *hypergraph.StackGraph {
	return hypergraph.NewStackGraph(d.S, d.GroupDigraph())
}
