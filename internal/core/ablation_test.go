package core

// Design ablation (DESIGN.md §5): the paper routes the stack-Kautz loop
// couplers through fiber rather than enlarging the central OTIS. These
// tests document why the obvious alternative — one central OTIS(d+1, G)
// carrying all d+1 couplers per group — realizes the WRONG topology: it
// yields ς(s, II(d+1,G)), and II(d+1,G) is not KG⁺(d,k) (it generally has
// no loop at every vertex, so intra-group communication breaks).

import (
	"testing"

	"otisnet/internal/digraph"
	"otisnet/internal/imase"
	"otisnet/internal/kautz"
)

func TestAblationLoopsViaBiggerOTISWrongTopology(t *testing.T) {
	// SK(·,3,2): G = 12 groups. Correct base: II(3,12) + loops = KG⁺(3,2).
	// Alternative hardware: II(4,12).
	G := kautz.N(3, 2)
	correct := digraph.AddLoops(imase.New(3, G).Digraph())
	alternative := imase.New(4, G).Digraph()
	if digraph.Isomorphic(correct, alternative) {
		t.Fatal("II(4,12) should NOT be KG⁺(3,2)")
	}
	// Decisively: KG⁺ has a loop at every vertex; II(4,12) does not.
	if alternative.LoopCount() == G {
		t.Fatal("II(4,12) unexpectedly has loops everywhere")
	}
	if correct.LoopCount() != G {
		t.Fatal("KG⁺ must have a loop at every vertex")
	}
}

func TestAblationLoopFreeDesignBreaksIntraGroup(t *testing.T) {
	// A design without the fiber loop has node degree d and cannot deliver
	// intra-group messages in one hop: its group digraph has no loops at
	// Kautz orders (II(d, d^{k-1}(d+1)) = KG(d,k) is loopless).
	d := buildMultiOPS(4, 3, kautz.N(3, 2), false)
	d.Name = "SK-without-loops(4,3,2)"
	if err := d.Verify(); err != nil {
		// The design is still internally consistent (it realizes
		// ς(s, II(3,12))) — it just isn't a stack-Kautz⁺ network.
		t.Fatalf("loop-free design should still verify against its own target: %v", err)
	}
	if d.GroupDigraph().LoopCount() != 0 {
		t.Fatal("Kautz-order II graph must be loopless")
	}
	// Whereas the paper's design has all loops.
	full := DesignStackKautz(4, 3, 2)
	if full.GroupDigraph().LoopCount() != full.Groups {
		t.Fatal("paper design must have a loop coupler per group")
	}
}

func TestAblationFiberCountMatchesGroups(t *testing.T) {
	// The fiber loop budget is exactly one per group across the family.
	for _, p := range []struct{ s, d, k int }{{2, 2, 2}, {6, 3, 2}, {3, 2, 3}} {
		de := DesignStackKautz(p.s, p.d, p.k)
		if got := de.NL.Count("FIBER"); got != kautz.N(p.d, p.k) {
			t.Fatalf("SK(%d,%d,%d): %d fibers, want %d", p.s, p.d, p.k, got, kautz.N(p.d, p.k))
		}
	}
}
