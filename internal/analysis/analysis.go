// Package analysis provides the cost and scalability model used to compare
// the paper's network families — the quantitative side of its introduction
// ("multi-OPS networks seem more viable and cost-effective under current
// optical technology"). For each configuration it reports processor count,
// per-node transceiver counts, coupler counts, OTIS block counts, diameter,
// average distance, per-slot capacity (the coupler bound) and the optical
// power feasibility of the coupler degree.
package analysis

import (
	"fmt"
	"strings"

	"otisnet/internal/imase"
	"otisnet/internal/kautz"
	"otisnet/internal/ops"
	"otisnet/internal/pops"
	"otisnet/internal/stackkautz"
)

// Cost summarizes one network configuration.
type Cost struct {
	// Name identifies the configuration ("SK(6,3,2)", "POPS(4,2)", ...).
	Name string
	// N is the processor count.
	N int
	// TransceiversPerNode is the number of transmitter (and receiver)
	// elements each processor needs.
	TransceiversPerNode int
	// Couplers is the number of OPS couplers (0 for point-to-point).
	Couplers int
	// CouplerDegree is the degree of each coupler (0 for point-to-point).
	CouplerDegree int
	// OTISBlocks is the number of free-space OTIS stages in the design.
	OTISBlocks int
	// Fibers is the number of fiber loopbacks.
	Fibers int
	// Diameter is the hop diameter.
	Diameter int
	// CapacityPerSlot is the maximum number of simultaneous messages: the
	// coupler count (or link count for point-to-point).
	CapacityPerSlot int
}

// CapacityPerNode returns CapacityPerSlot / N — the per-processor share of
// the network's transmission capacity.
func (c Cost) CapacityPerNode() float64 {
	if c.N == 0 {
		return 0
	}
	return float64(c.CapacityPerSlot) / float64(c.N)
}

// SplittingFeasible reports whether the coupler degree closes the optical
// budget (launch, excess loss, sensitivity all in dB/dBm).
func (c Cost) SplittingFeasible(launchDBm, excessDB, sensitivityDBm float64) bool {
	if c.CouplerDegree <= 1 {
		return true
	}
	return c.CouplerDegree <= ops.MaxDegreeForBudget(launchDBm, excessDB, sensitivityDBm)
}

// POPSCost returns the cost model of POPS(t,g): g² couplers of degree t,
// g beams per node, 2g+1 OTIS blocks (g input-side, g output-side, one
// central).
func POPSCost(t, g int) Cost {
	p := pops.New(t, g)
	return Cost{
		Name:                fmt.Sprintf("POPS(%d,%d)", t, g),
		N:                   p.N(),
		TransceiversPerNode: g,
		Couplers:            p.Couplers(),
		CouplerDegree:       t,
		OTISBlocks:          2*g + 1,
		Diameter:            1,
		CapacityPerSlot:     p.Couplers(),
	}
}

// StackKautzCost returns the cost model of SK(s,d,k): G(d+1) couplers of
// degree s, d+1 beams per node, 2G+1 OTIS blocks and G fiber loops, where
// G = d^{k-1}(d+1).
func StackKautzCost(s, d, k int) Cost {
	n := stackkautz.New(s, d, k)
	return Cost{
		Name:                fmt.Sprintf("SK(%d,%d,%d)", s, d, k),
		N:                   n.N(),
		TransceiversPerNode: d + 1,
		Couplers:            n.Couplers(),
		CouplerDegree:       s,
		OTISBlocks:          2*n.Groups() + 1,
		Fibers:              n.Groups(),
		Diameter:            n.Diameter(),
		CapacityPerSlot:     n.Couplers(),
	}
}

// StackImaseCost returns the cost model of ς(s, II⁺(d,n)).
func StackImaseCost(s, d, n int) Cost {
	w := stackkautz.NewII(s, d, n)
	diam := w.StackGraph().Diameter()
	return Cost{
		Name:                fmt.Sprintf("stack-II(%d,%d,%d)", s, d, n),
		N:                   w.N(),
		TransceiversPerNode: d + 1,
		Couplers:            w.Couplers(),
		CouplerDegree:       s,
		OTISBlocks:          2*n + 1,
		Fibers:              n,
		Diameter:            diam,
		CapacityPerSlot:     w.Couplers(),
	}
}

// DeBruijnCost returns the cost model of the point-to-point de Bruijn
// baseline B(d,k): every arc a dedicated link, d transceivers per node.
func DeBruijnCost(d, k int) Cost {
	b := kautz.NewDeBruijn(d, k)
	return Cost{
		Name:                fmt.Sprintf("deBruijn(%d,%d)", d, k),
		N:                   b.N(),
		TransceiversPerNode: d,
		Couplers:            0,
		CouplerDegree:       0,
		OTISBlocks:          0,
		Diameter:            b.Digraph().Diameter(),
		CapacityPerSlot:     b.Digraph().M(),
	}
}

// SingleOPSCost returns the cost model of a single-hop single-OPS network
// over n nodes: one giant coupler of degree n (the "one big star" design
// the introduction contrasts against) — one message total per slot.
func SingleOPSCost(n int) Cost {
	return Cost{
		Name:                fmt.Sprintf("singleOPS(%d)", n),
		N:                   n,
		TransceiversPerNode: 1,
		Couplers:            1,
		CouplerDegree:       n,
		Diameter:            1,
		CapacityPerSlot:     1,
	}
}

// FormatTable renders a markdown table of cost rows.
func FormatTable(rows []Cost) string {
	var b strings.Builder
	b.WriteString("| network | N | tx/node | couplers | coupler deg | OTIS blocks | fibers | diam | capacity/slot | capacity/node |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|\n")
	for _, c := range rows {
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %d | %d | %d | %d | %d | %.3f |\n",
			c.Name, c.N, c.TransceiversPerNode, c.Couplers, c.CouplerDegree,
			c.OTISBlocks, c.Fibers, c.Diameter, c.CapacityPerSlot, c.CapacityPerNode())
	}
	return b.String()
}

// BestStackKautzFor searches (s,d,k) with s <= maxDegree (optical budget)
// for the smallest-diameter stack-Kautz network reaching at least nTarget
// processors; ties broken by coupler count. Returns ok=false when no
// configuration within the given ranges reaches the target.
func BestStackKautzFor(nTarget, maxDegree, maxD, maxK int) (s, d, k int, ok bool) {
	bestDiam, bestCouplers := 1<<30, 1<<30
	for dd := 2; dd <= maxD; dd++ {
		for kk := 1; kk <= maxK; kk++ {
			groups := kautz.N(dd, kk)
			// Smallest s reaching the target.
			ss := (nTarget + groups - 1) / groups
			if ss < 1 {
				ss = 1
			}
			if ss > maxDegree {
				continue
			}
			couplers := groups * (dd + 1)
			if kk < bestDiam || (kk == bestDiam && couplers < bestCouplers) {
				bestDiam, bestCouplers = kk, couplers
				s, d, k, ok = ss, dd, kk, true
			}
		}
	}
	return s, d, k, ok
}

// ImaseFillsGap reports, for a target group count that is not a Kautz
// order, the stack-Imase-Itoh diameter bound — demonstrating the size
// flexibility II graphs buy (§2.6).
func ImaseFillsGap(d, n int) (diamBound int, kautzOrder bool) {
	_, ok := imase.KautzOrder(d, n)
	return imase.DiameterBound(d, n), ok
}
