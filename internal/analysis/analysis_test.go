package analysis

import (
	"strings"
	"testing"
	"testing/quick"

	"otisnet/internal/core"
	"otisnet/internal/kautz"
)

func TestPOPSCost(t *testing.T) {
	c := POPSCost(4, 2)
	if c.N != 8 || c.Couplers != 4 || c.CouplerDegree != 4 || c.TransceiversPerNode != 2 {
		t.Fatalf("POPS cost wrong: %+v", c)
	}
	if c.OTISBlocks != 5 || c.Diameter != 1 {
		t.Fatalf("POPS cost wrong: %+v", c)
	}
	if c.CapacityPerNode() != 0.5 {
		t.Fatalf("capacity per node = %v, want 0.5", c.CapacityPerNode())
	}
}

func TestStackKautzCost(t *testing.T) {
	c := StackKautzCost(6, 3, 2)
	if c.N != 72 || c.Couplers != 48 || c.TransceiversPerNode != 4 || c.Fibers != 12 {
		t.Fatalf("SK cost wrong: %+v", c)
	}
	if c.OTISBlocks != 25 || c.Diameter != 2 {
		t.Fatalf("SK cost wrong: %+v", c)
	}
}

func TestCostMatchesDesignBOM(t *testing.T) {
	// The analytic OTIS block count must equal the built design's count.
	c := StackKautzCost(6, 3, 2)
	d := core.DesignStackKautz(6, 3, 2)
	bom, _ := d.NL.BOM()
	otisBlocks := 0
	for class, n := range bom {
		if strings.HasPrefix(class, "OTIS(") {
			otisBlocks += n
		}
	}
	if otisBlocks != c.OTISBlocks {
		t.Fatalf("analytic OTIS blocks %d != design %d", c.OTISBlocks, otisBlocks)
	}
	if bom["FIBER"] != c.Fibers {
		t.Fatalf("analytic fibers %d != design %d", c.Fibers, bom["FIBER"])
	}
	// POPS too.
	cp := POPSCost(4, 2)
	dp := core.DesignPOPS(4, 2)
	bomP, _ := dp.NL.BOM()
	otisP := 0
	for class, n := range bomP {
		if strings.HasPrefix(class, "OTIS(") {
			otisP += n
		}
	}
	if otisP != cp.OTISBlocks {
		t.Fatalf("POPS analytic OTIS blocks %d != design %d", cp.OTISBlocks, otisP)
	}
}

func TestStackImaseCost(t *testing.T) {
	c := StackImaseCost(4, 3, 10)
	if c.N != 40 || c.Couplers != 40 || c.Fibers != 10 {
		t.Fatalf("stack-II cost wrong: %+v", c)
	}
}

func TestDeBruijnCost(t *testing.T) {
	c := DeBruijnCost(2, 3)
	if c.N != 8 || c.CapacityPerSlot != 16 || c.Couplers != 0 {
		t.Fatalf("de Bruijn cost wrong: %+v", c)
	}
	if c.Diameter != 3 {
		t.Fatalf("diameter = %d, want 3", c.Diameter)
	}
}

func TestSingleOPSCost(t *testing.T) {
	c := SingleOPSCost(64)
	if c.CapacityPerSlot != 1 || c.CouplerDegree != 64 {
		t.Fatalf("single OPS cost wrong: %+v", c)
	}
	// The one-big-star capacity per node collapses as N grows — the
	// introduction's argument for multi-OPS.
	if c.CapacityPerNode() >= POPSCost(8, 8).CapacityPerNode() {
		t.Fatal("single OPS should have far lower capacity per node")
	}
}

func TestSplittingFeasible(t *testing.T) {
	c := POPSCost(100, 2)
	if c.SplittingFeasible(0, 0, -10) { // margin 10 dB -> degree <= 10
		t.Fatal("degree-100 coupler should not close a 10 dB budget")
	}
	if !c.SplittingFeasible(0, 0, -30) { // 30 dB -> degree <= 1000
		t.Fatal("degree-100 coupler should close a 30 dB budget")
	}
	if !DeBruijnCost(2, 2).SplittingFeasible(0, 0, 0) {
		t.Fatal("point-to-point always feasible")
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]Cost{POPSCost(4, 2), StackKautzCost(6, 3, 2)})
	if !strings.Contains(out, "POPS(4,2)") || !strings.Contains(out, "SK(6,3,2)") {
		t.Fatalf("table missing rows:\n%s", out)
	}
	if strings.Count(out, "\n") != 4 {
		t.Fatalf("table should have header + separator + 2 rows:\n%s", out)
	}
}

func TestBestStackKautzFor(t *testing.T) {
	s, d, k, ok := BestStackKautzFor(500, 64, 4, 3)
	if !ok {
		t.Fatal("a configuration must exist")
	}
	if kautz.N(d, k)*s < 500 {
		t.Fatalf("SK(%d,%d,%d) reaches only %d processors", s, d, k, kautz.N(d, k)*s)
	}
	if s > 64 {
		t.Fatal("coupler degree budget violated")
	}
	// Diameter should be the minimum possible: k == 1 reachable? Groups for
	// k=1 are d+1 <= 5, s <= 64 -> max 320 processors < 500 at d=4, so the
	// answer must... d+1=5 groups * 64 = 320 < 500 -> k must be >= 2.
	if k != 2 {
		t.Fatalf("expected diameter-2 optimum, got k=%d", k)
	}
	// Unreachable target.
	if _, _, _, ok := BestStackKautzFor(1<<30, 2, 2, 1); ok {
		t.Fatal("impossible target should report !ok")
	}
}

func TestImaseFillsGap(t *testing.T) {
	diam, isKautz := ImaseFillsGap(3, 13)
	if isKautz {
		t.Fatal("13 is not a Kautz order for d=3")
	}
	if diam != 3 {
		t.Fatalf("diameter bound = %d, want 3", diam)
	}
	_, isKautz = ImaseFillsGap(3, 12)
	if !isKautz {
		t.Fatal("12 is a Kautz order for d=3")
	}
}

// Property: capacity per node of SK(s,d,k) is (d+1)/s — independent of k —
// and the analytic coupler count matches G(d+1).
func TestSKCapacityProperty(t *testing.T) {
	f := func(su, du, ku uint8) bool {
		s := 1 + int(su)%6
		d := 2 + int(du)%3
		k := 1 + int(ku)%2
		c := StackKautzCost(s, d, k)
		want := float64(d+1) / float64(s)
		diff := c.CapacityPerNode() - want
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-12 && c.Couplers == kautz.N(d, k)*(d+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
