package imase

// Route-invariant property test (PR 5 test hardening): Imase-Itoh graphs
// have no label-induced routing (that is the point of §3 — only Kautz
// orders do), so their simulation routing is the precomputed table of
// sim.NewPointToPointTopology. This test pins that table's loop-freedom:
// every entry's next hop strictly decreases the BFS distance to the
// destination, for a spread of (d,n) including non-Kautz orders.

import (
	"testing"

	"otisnet/internal/sim"
)

func TestSimRouteTableAdvancesTowardDestination(t *testing.T) {
	for _, p := range [][2]int{{2, 6}, {2, 10}, {3, 10}, {3, 12}, {4, 9}} {
		d, n := p[0], p[1]
		ii := New(d, n)
		g := ii.Digraph()
		topo := sim.NewPointToPointTopology(g)
		rows := make([][]int, n)
		for u := 0; u < n; u++ {
			rows[u] = g.BFS(u)
		}
		for u := 0; u < n; u++ {
			for dst := 0; dst < n; dst++ {
				if u == dst {
					continue
				}
				c, hop := topo.NextCoupler(u, dst)
				if c < 0 || hop < 0 {
					t.Fatalf("II(%d,%d): no route %d->%d", d, n, u, dst)
				}
				if rows[hop][dst] != rows[u][dst]-1 {
					t.Fatalf("II(%d,%d): hop %d->%d toward %d does not advance (dist %d -> %d)",
						d, n, u, hop, dst, rows[u][dst], rows[hop][dst])
				}
			}
		}
	}
}
