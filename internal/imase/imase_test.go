package imase

import (
	"testing"
	"testing/quick"

	"otisnet/internal/digraph"
	"otisnet/internal/kautz"
)

func TestNeighborsArithmetic(t *testing.T) {
	// II(3,12), Fig. 10: node 0 -> (-1, -2, -3) mod 12 = 11, 10, 9.
	got := Neighbors(3, 12, 0)
	want := []int{11, 10, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors(3,12,0) = %v, want %v", got, want)
		}
	}
	// Node 5 -> (-15-α) mod 12 for α=1..3 = 8, 7, 6.
	got = Neighbors(3, 12, 5)
	want = []int{8, 7, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors(3,12,5) = %v, want %v", got, want)
		}
	}
}

func TestNewInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0,5) should panic")
		}
	}()
	New(0, 5)
}

func TestBasicStructure(t *testing.T) {
	ii := New(3, 12)
	if ii.N() != 12 || ii.Degree() != 3 {
		t.Fatal("parameters wrong")
	}
	g := ii.Digraph()
	if g.M() != 36 {
		t.Fatalf("II(3,12) arcs = %d, want 36", g.M())
	}
	for u := 0; u < 12; u++ {
		if g.OutDegree(u) != 3 {
			t.Fatalf("out-degree of %d is %d", u, g.OutDegree(u))
		}
	}
}

func TestInDegreeRegular(t *testing.T) {
	// II(d,n) is d-in-regular: v has in-neighbors determined by
	// d·u ≡ -v-α, and as u ranges over Z_n each v is hit d times total.
	for _, p := range []struct{ d, n int }{{2, 7}, {3, 12}, {4, 10}, {2, 6}} {
		g := New(p.d, p.n).Digraph()
		for v := 0; v < p.n; v++ {
			if g.InDegree(v) != p.d {
				t.Fatalf("II(%d,%d): in-degree of %d = %d, want %d",
					p.d, p.n, v, g.InDegree(v), p.d)
			}
		}
	}
}

func TestDiameterBound(t *testing.T) {
	cases := []struct{ d, n, want int }{
		{3, 12, 3}, {2, 8, 3}, {2, 16, 4}, {3, 27, 3}, {3, 28, 4},
		{5, 1, 0}, {1, 4, 3},
	}
	for _, c := range cases {
		if got := DiameterBound(c.d, c.n); got != c.want {
			t.Errorf("DiameterBound(%d,%d) = %d, want %d", c.d, c.n, got, c.want)
		}
	}
}

func TestDiameterMatchesBound(t *testing.T) {
	// Imase-Itoh 1981: diameter of II(d,n) is ⌈log_d n⌉ (n > d+1; for very
	// small n the graph can beat the bound). We verify equality on a sweep
	// and never exceed it.
	for d := 2; d <= 4; d++ {
		for n := d + 2; n <= 40; n++ {
			g := New(d, n).Digraph()
			diam := g.Diameter()
			bound := DiameterBound(d, n)
			if diam > bound {
				t.Errorf("II(%d,%d) diameter %d exceeds bound %d", d, n, diam, bound)
			}
			if diam != bound {
				t.Logf("II(%d,%d) diameter %d < bound %d (allowed)", d, n, diam, bound)
			}
		}
	}
}

func TestKautzOrder(t *testing.T) {
	cases := []struct {
		d, n  int
		wantK int
		ok    bool
	}{
		{3, 12, 2, true},   // 3·4
		{2, 6, 2, true},    // 2·3
		{2, 12, 3, true},   // 4·3
		{2, 3, 1, true},    // d+1
		{3, 13, 0, false},  // not a Kautz order
		{5, 750, 4, true},  // 5³·6
		{5, 3750, 5, true}, // 5⁴·6 — the paper's "KG(5,4)" figure is KG(5,5)
	}
	for _, c := range cases {
		k, ok := KautzOrder(c.d, c.n)
		if ok != c.ok || k != c.wantK {
			t.Errorf("KautzOrder(%d,%d) = (%d,%v), want (%d,%v)",
				c.d, c.n, k, ok, c.wantK, c.ok)
		}
	}
}

func TestIIEqualsKautzAtKautzOrders(t *testing.T) {
	// Imase-Itoh 1983 / paper §2.6: II(d, d^{k-1}(d+1)) is KG(d,k).
	for _, p := range []struct{ d, k int }{{2, 1}, {2, 2}, {2, 3}, {3, 2}, {4, 2}} {
		n := kautz.N(p.d, p.k)
		ii := New(p.d, n)
		k, isK := ii.IsKautz()
		if !isK || k != p.k {
			t.Errorf("II(%d,%d) should be KG(%d,%d); got k=%d ok=%v",
				p.d, n, p.d, p.k, k, isK)
		}
	}
}

func TestIsKautzRejectsNonKautzOrders(t *testing.T) {
	ii := New(3, 13)
	if _, isK := ii.IsKautz(); isK {
		t.Fatal("II(3,13) is not a Kautz order")
	}
}

func TestFig10IsKG32(t *testing.T) {
	// Fig. 10 states II(3,12) is KG(3,2) explicitly.
	ii := New(3, 12)
	k, isK := ii.IsKautz()
	if !isK || k != 2 {
		t.Fatalf("II(3,12) should be KG(3,2), got k=%d ok=%v", k, isK)
	}
}

func TestStronglyConnected(t *testing.T) {
	for _, p := range []struct{ d, n int }{{2, 5}, {3, 12}, {4, 17}} {
		if !New(p.d, p.n).Digraph().IsStronglyConnected() {
			t.Errorf("II(%d,%d) should be strongly connected", p.d, p.n)
		}
	}
}

// Property: neighbor arithmetic stays in range and matches the digraph.
func TestNeighborsConsistencyProperty(t *testing.T) {
	f := func(du, nu, uu uint8) bool {
		d := 1 + int(du)%4
		n := 2 + int(nu)%30
		u := int(uu) % n
		nbrs := Neighbors(d, n, u)
		if len(nbrs) != d {
			return false
		}
		g := New(d, n).Digraph()
		for _, v := range nbrs {
			if v < 0 || v >= n {
				return false
			}
			if !g.HasArc(u, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the d out-neighbors of u are d consecutive residues
// (-du-1 ... -du-d descending), a structural fact Proposition 1's input
// blocking relies on.
func TestNeighborsConsecutiveProperty(t *testing.T) {
	f := func(du, nu, uu uint8) bool {
		d := 1 + int(du)%4
		n := d + 1 + int(nu)%30
		u := int(uu) % n
		nbrs := Neighbors(d, n, u)
		for i := 1; i < len(nbrs); i++ {
			if (nbrs[i-1]-nbrs[i]+n)%n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSmallOrdersAreComplete(t *testing.T) {
	// II(d, d+1) is the complete digraph K_{d+1} (= KG(d,1)).
	for d := 2; d <= 4; d++ {
		ii := New(d, d+1)
		if !digraph.Isomorphic(ii.Digraph(), digraph.Complete(d+1)) {
			t.Errorf("II(%d,%d) should be K_%d", d, d+1, d+1)
		}
	}
}
