// Package imase implements the digraphs of Imase and Itoh II(d,n)
// (IEEE ToC 1981/1983), the Kautz-graph generalization that exists for
// every order n: nodes are the integers modulo n and node u has arcs to
// v ≡ (-d·u - α) mod n for 1 <= α <= d. The paper's key result
// (Proposition 1) is that II(d,n)'s optical interconnections are exactly
// the OTIS(d,n) architecture; package otis carries that mapping, this
// package carries the graph itself and its structural properties:
// diameter ⌈log_d n⌉ and equivalence with KG(d,k) when n = d^{k-1}(d+1).
package imase

import (
	"fmt"
	"math"

	"otisnet/internal/digraph"
	"otisnet/internal/kautz"
)

// Graph is the Imase-Itoh digraph II(d,n).
type Graph struct {
	d, n int
	g    *digraph.Digraph
}

// New constructs II(d,n) with degree d >= 1 and n >= 1 nodes.
func New(d, n int) *Graph {
	if d < 1 || n < 1 {
		panic(fmt.Sprintf("imase: invalid parameters d=%d n=%d", d, n))
	}
	ii := &Graph{d: d, n: n, g: digraph.New(n)}
	for u := 0; u < n; u++ {
		for _, v := range Neighbors(d, n, u) {
			ii.g.AddArc(u, v)
		}
	}
	return ii
}

// Neighbors returns the out-neighborhood of node u in II(d,n):
// (-d·u - α) mod n for α = 1..d, in α order. Exported so that package otis
// can verify Proposition 1 against the defining arithmetic without building
// the whole graph.
func Neighbors(d, n, u int) []int {
	out := make([]int, d)
	for alpha := 1; alpha <= d; alpha++ {
		v := (-d*u - alpha) % n
		if v < 0 {
			v += n
		}
		out[alpha-1] = v
	}
	return out
}

// Degree returns d.
func (ii *Graph) Degree() int { return ii.d }

// N returns the number of nodes n.
func (ii *Graph) N() int { return ii.n }

// Digraph returns the underlying digraph (treat as read-only).
func (ii *Graph) Digraph() *digraph.Digraph { return ii.g }

// DiameterBound returns ⌈log_d n⌉, which Imase and Itoh proved is the
// diameter of II(d,n) (for n > d; small orders can be complete graphs of
// smaller diameter). The tests compare it with the BFS diameter.
func DiameterBound(d, n int) int {
	if n == 1 {
		return 0
	}
	if d == 1 {
		return n - 1
	}
	// Ceil of log_d n computed in exact integer arithmetic to avoid float
	// edge cases: smallest k with d^k >= n.
	k := 0
	p := 1
	for p < n {
		// Guard against overflow at paper-irrelevant scales.
		if p > math.MaxInt/d {
			break
		}
		p *= d
		k++
	}
	return k
}

// KautzOrder reports whether n = d^{k-1}(d+1) for some k >= 1, returning k.
// At these orders II(d,n) is the Kautz graph KG(d,k) (Imase-Itoh 1983),
// which Corollary 1 of the paper uses.
func KautzOrder(d, n int) (k int, ok bool) {
	k = 1
	m := d + 1
	for m <= n {
		if m == n {
			return k, true
		}
		if m > math.MaxInt/d {
			return 0, false
		}
		m *= d
		k++
	}
	return 0, false
}

// IsKautz reports whether this graph's order makes it a Kautz graph, and if
// so verifies the isomorphism II(d,n) ≅ KG(d,k) exactly. The returned k is
// meaningful only when the boolean is true.
func (ii *Graph) IsKautz() (k int, isKautz bool) {
	k, ok := KautzOrder(ii.d, ii.n)
	if !ok {
		return 0, false
	}
	kg := kautz.New(ii.d, k)
	return k, digraph.Isomorphic(ii.g, kg.Digraph())
}
