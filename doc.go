// Package otisnet is a reproduction of "OTIS-Based Multi-Hop Multi-OPS
// Lightwave Networks" (Coudert, Ferreira, Muñoz; WOCS/IPPS 1999) as a Go
// library: Kautz and Imase-Itoh digraphs, stack-graphs, the OTIS free-space
// architecture, OPS couplers, the POPS and stack-Kautz networks, a
// component-level optical design engine that machine-checks the paper's
// Proposition 1 and the Figure 11/12 designs end to end, and a slotted-time
// network simulator with pluggable structured workloads (OTIS transpose,
// group hotspot, bursty on/off, collective-schedule replay validating the
// T9 bounds dynamically), fault injection (live node/coupler/transmitter
// failures validating §2.5 dynamically) and parallel scenario sweeps.
//
// The public surface lives in internal packages by design (this module is a
// research artifact); see README.md for the architecture map, cmd/ for the
// executables, and examples/ for runnable walkthroughs. The benchmarks in
// bench_test.go regenerate every table and figure of the paper (see
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// results).
package otisnet
