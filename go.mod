module otisnet

go 1.24
